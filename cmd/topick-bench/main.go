// Command topick-bench measures the decode-step hot path and persists the
// results as the repo's performance trajectory. It runs the same benchmark
// bodies as `go test -bench BenchmarkDecodeStep` through testing.Benchmark,
// compares the incremental quantized-KV cache against the from-scratch
// baseline and the head-parallel pool executor against serial execution,
// runs the shared-prefix serving arm (prefix-cache hit rate, TTFT, and
// prefill compute with sharing on vs off) and the replica-fleet arm (single
// engine vs N replicas behind prefix-affinity routing), and writes a JSON
// record future PRs regress against:
//
//	make bench            # writes BENCH_decode.json at the repo root
//	go run ./cmd/topick-bench -contexts 128,512,1024 -out my.json
//	go run ./cmd/topick-bench -parallel 8 -par-heads 8,16 -par-context 512
//	go run ./cmd/topick-bench -serving=false    # skip the serving arm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tokenpicker/internal/bench"
	xexec "tokenpicker/internal/exec"
	"tokenpicker/internal/train"
)

type report struct {
	Note      string `json:"note"`
	Unit      string `json:"unit"`
	Timestamp string `json:"timestamp"`
	// GitSHA stamps the commit the numbers were measured at ("unknown"
	// outside a git checkout), GOMAXPROCS the parallelism the run actually
	// had — both required to compare BENCH_decode.json across PRs.
	GitSHA     string `json:"git_sha"`
	GoMaxProcs int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"` // cores visible to the run; pool speedups are bounded by this
	// Warning flags records whose parallel arms are not meaningful — set
	// when the run saw a single CPU, where pool and batching speedups
	// honestly measure pure overhead (~1.0x) rather than the win.
	Warning string                   `json:"warning,omitempty"`
	Results []bench.DecodeStepResult `json:"results"`
	// Speedup maps "kernel/ctx=N" to scratch-ns / incremental-ns for the
	// quantizing kernels (the measured win of the incremental cache) and
	// "kernel/heads=H/ctx=N/pool=W" to serial-ns / pool-ns (the measured
	// win of the head-parallel executor; ~1.0 on a single-core host).
	Speedup map[string]float64 `json:"speedup"`
	// Serving is the shared-prefix serving arm: prefix-cache hit rate,
	// TTFT with sharing on/off, and the prefill compute saved.
	Serving *servingRecord `json:"serving,omitempty"`
	// Batching is the high-concurrency iteration-batching arm: per-session
	// worker dispatch vs cross-session token batching over the same fleet.
	Batching *batchingRecord `json:"iteration_batching,omitempty"`
	// Speculative is the draft-and-verify arm: the same greedy fleet with
	// speculation off and once per draft source; every arm must emit the
	// baseline's exact token streams.
	Speculative *speculativeRecord `json:"speculative,omitempty"`
	// Fleet is the replica-fleet serving arm: the same shared-system-prompt
	// tenant traffic on one engine and on N replicas behind prefix-affinity
	// routing; the streams must stay bit-identical.
	Fleet *fleetRecord `json:"fleet,omitempty"`
}

// servingRecord persists the shared-prefix serving comparison.
type servingRecord struct {
	Sessions           int     `json:"sessions"`
	PrefixLen          int     `json:"prefix_len"`
	PrefixHitRate      float64 `json:"prefix_hit_rate"`
	RowsReused         int64   `json:"kv_rows_reused"`
	TTFTSharedMs       float64 `json:"ttft_shared_ms"`
	TTFTUnsharedMs     float64 `json:"ttft_unshared_ms"`
	TTFTReduction      float64 `json:"ttft_reduction"`
	PromptToksShared   int64   `json:"prefill_tokens_shared"`
	PromptToksUnshared int64   `json:"prefill_tokens_unshared"`
	PrefillSavings     float64 `json:"prefill_savings"`
	TokensMatch        bool    `json:"tokens_match"`
}

// batchingRecord persists the iteration-batching serving comparison.
type batchingRecord struct {
	Sessions        int     `json:"sessions"`
	MaxBatchTokens  int     `json:"max_batch_tokens"`
	WorkerTokSec    float64 `json:"worker_tokens_per_sec"`
	BatchedTokSec   float64 `json:"batched_tokens_per_sec"`
	WorkerTTFT50Ms  float64 `json:"worker_ttft_p50_ms"`
	WorkerTTFT95Ms  float64 `json:"worker_ttft_p95_ms"`
	BatchedTTFT50Ms float64 `json:"batched_ttft_p50_ms"`
	BatchedTTFT95Ms float64 `json:"batched_ttft_p95_ms"`
	Occupancy       float64 `json:"batch_occupancy_rows"`
	Iterations      int64   `json:"batch_iterations"`
	TokensMatch     bool    `json:"tokens_match"`
}

// speculativeRecord persists the speculative-decoding serving comparison.
type speculativeRecord struct {
	Sessions       int               `json:"sessions"`
	K              int               `json:"speculate_k"`
	BaselineTokSec float64           `json:"baseline_tokens_per_sec"`
	Arms           []specDraftRecord `json:"drafts"`
}

// fleetRecord persists the replica-fleet serving comparison.
type fleetRecord struct {
	Replicas        int       `json:"replicas"`
	Sessions        int       `json:"sessions"`
	TenantGroups    int       `json:"tenant_groups"`
	SingleTokSec    float64   `json:"single_tokens_per_sec"`
	FleetTokSec     float64   `json:"fleet_tokens_per_sec"`
	Speedup         float64   `json:"speedup"`
	RoutedAffinity  int64     `json:"routed_affinity"`
	RoutedSpilled   int64     `json:"routed_spilled"`
	RoutedBalanced  int64     `json:"routed_balanced"`
	ReplicaHitRates []float64 `json:"replica_prefix_hit_rates"`
	TokensMatch     bool      `json:"tokens_match"`
	// Warning carries the single-CPU stamp under the same convention as the
	// top-level field (assigned unconditionally from the current run's core
	// count): on one core the fleet "speedup" honestly measures router and
	// replication overhead, not parallel serving gain.
	Warning string `json:"warning,omitempty"`
}

type specDraftRecord struct {
	Draft          string  `json:"draft"`
	TokSec         float64 `json:"tokens_per_sec"`
	Speedup        float64 `json:"speedup"`
	Drafted        int64   `json:"drafted_tokens"`
	Accepted       int64   `json:"accepted_tokens"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	TokensMatch    bool    `json:"tokens_match"`
}

// warningFor recomputes the single-CPU warning from the CURRENT run's core
// count. It must be assigned unconditionally: a stale warning merged in from
// an earlier single-core record would otherwise survive into a multi-core
// run's JSON (and vice versa — a multi-core record must lose the flag).
func warningFor(cpus int) string {
	if cpus == 1 {
		return "single-CPU run: pool-executor and iteration-batching " +
			"speedups measure scheduling overhead, not parallel gain"
	}
	return ""
}

func parseInts(s, flagName string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "topick-bench: bad %s %q\n", flagName, f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// gitSHA resolves the short commit hash of the working tree, "unknown" when
// git or the repository is unavailable (the record must still be written).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if sha == "" {
		return "unknown"
	}
	return sha
}

func main() {
	out := flag.String("out", "BENCH_decode.json", "output JSON path")
	contexts := flag.String("contexts", "128,512", "comma-separated context lengths")
	parallel := flag.Int("parallel", 0, "pool-executor width for the head-parallel arm (0 = NumCPU)")
	parHeads := flag.String("par-heads", "8,16", "head counts for the head-parallel arm")
	parCtx := flag.Int("par-context", 512, "context length for the head-parallel arm")
	serving := flag.Bool("serving", true, "also run the shared-prefix serving arm (trains the demo model)")
	flag.Parse()

	ctxs := parseInts(*contexts, "context")
	heads := parseInts(*parHeads, "par-heads")
	// The comparison arm always runs a real pool (width >= 2) so the
	// serial/pool columns both exist; on a single-core host the pool row
	// honestly measures pure executor overhead (speedup ~1.0).
	width := xexec.ResolveWidth(*parallel)
	if width < 2 {
		width = 2
	}

	rep := report{
		Note: "decode-step hot path: one generation step through the full decoder " +
			"(attention + FFN) per kernel; scratch mode re-quantizes the whole KV " +
			"cache every attention call (the pre-incremental behaviour; an upper " +
			"bound on it for spatten, which used to quantize only surviving rows), " +
			"incremental mode uses the cache-owned side-car; parallel=W rows run " +
			"the heads of each layer on a W-slot work-stealing pool executor",
		Unit:       "ns per generated token",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Speedup:    map[string]float64{},
	}
	rep.Warning = warningFor(rep.CPUs)
	if rep.Warning != "" {
		fmt.Fprintf(os.Stderr, "topick-bench: warning: %s\n", rep.Warning)
	}

	// Arm 1: incremental vs from-scratch quantization (serial executor).
	scratchNs := map[string]float64{}
	for _, kernel := range bench.DecodeKernels() {
		for _, ctx := range ctxs {
			modes := []bool{false}
			for _, quant := range bench.QuantizedDecodeKernels() {
				if quant == kernel {
					modes = append(modes, true)
				}
			}
			for _, scratch := range modes {
				r := bench.RunDecodeStep(kernel, ctx, scratch)
				rep.Results = append(rep.Results, r)
				fmt.Printf("%-16s ctx=%-5d heads=%-3d par=%-3d %-11s %12.0f ns/tok %10.0f tok/s %4d allocs/op\n",
					r.Kernel, r.Context, r.Heads, r.Parallel, r.Mode, r.NsPerToken, r.TokensPerSec, r.AllocsPerOp)
				if scratch {
					scratchNs[fmt.Sprintf("%s/ctx=%d", kernel, ctx)] = r.NsPerToken
				}
			}
		}
	}
	for _, r := range rep.Results {
		if r.Mode != "incremental" {
			continue
		}
		key := fmt.Sprintf("%s/ctx=%d", r.Kernel, r.Context)
		if s, ok := scratchNs[key]; ok {
			rep.Speedup[key] = s / r.NsPerToken
		}
	}

	// Arm 2: serial vs head-parallel pool executor at wider head counts.
	for _, kernel := range bench.DecodeKernels() {
		for _, h := range heads {
			var serialNs float64
			for _, w := range []int{1, width} {
				r := bench.RunDecodeStepSpec(bench.DecodeBenchSpec{
					Kernel: kernel, Context: *parCtx, Heads: h, Parallel: w,
				})
				rep.Results = append(rep.Results, r)
				fmt.Printf("%-16s ctx=%-5d heads=%-3d par=%-3d %-11s %12.0f ns/tok %10.0f tok/s %4d allocs/op\n",
					r.Kernel, r.Context, r.Heads, r.Parallel, r.Mode, r.NsPerToken, r.TokensPerSec, r.AllocsPerOp)
				if w == 1 {
					serialNs = r.NsPerToken
				} else if serialNs > 0 {
					key := fmt.Sprintf("%s/heads=%d/ctx=%d/pool=%d", kernel, h, *parCtx, w)
					rep.Speedup[key] = serialNs / r.NsPerToken
				}
			}
		}
	}

	for key, s := range rep.Speedup {
		fmt.Printf("speedup %-40s %.2fx\n", key, s)
	}

	// Arm 3: shared-prefix serving — prefix-cache hit rate, TTFT, and
	// prefill compute with sharing on vs off.
	if *serving {
		fmt.Println("serving arm: training demo model...")
		res := bench.ComparePrefixServing(train.TestModel(), bench.DefaultPrefixServingOptions())
		rep.Serving = &servingRecord{
			Sessions:           res.Sessions,
			PrefixLen:          res.PrefixLen,
			PrefixHitRate:      res.HitRate,
			RowsReused:         res.RowsReused,
			TTFTSharedMs:       res.SharedTTFT * 1e3,
			TTFTUnsharedMs:     res.UnsharedTTFT * 1e3,
			TTFTReduction:      res.TTFTReduction(),
			PromptToksShared:   res.SharedPromptToks,
			PromptToksUnshared: res.UnsharedPromptToks,
			PrefillSavings:     res.PrefillSavings(),
			TokensMatch:        res.TokensMatch,
		}
		fmt.Printf("serving: prefix hit rate %.0f%%, prefill %.1fx less, TTFT %.1fx lower, tokens match %v\n",
			100*res.HitRate, res.PrefillSavings(), res.TTFTReduction(), res.TokensMatch)
	}

	// Arm 4: iteration-level batching — the same high-concurrency
	// mixed-length fleet through per-session workers and through
	// cross-session token batching; the two must emit identical tokens.
	if *serving {
		fmt.Println("iteration-batching arm: running fleet twice...")
		res := bench.CompareIterationBatching(train.TestModel(), bench.DefaultBatchingOptions())
		rep.Batching = &batchingRecord{
			Sessions:        res.Sessions,
			MaxBatchTokens:  bench.DefaultBatchingOptions().MaxBatchTokens,
			WorkerTokSec:    res.WorkerTokSec,
			BatchedTokSec:   res.BatchedTokSec,
			WorkerTTFT50Ms:  res.WorkerTTFT50 * 1e3,
			WorkerTTFT95Ms:  res.WorkerTTFT95 * 1e3,
			BatchedTTFT50Ms: res.BatchedTTFT50 * 1e3,
			BatchedTTFT95Ms: res.BatchedTTFT95 * 1e3,
			Occupancy:       res.Occupancy,
			Iterations:      res.Iterations,
			TokensMatch:     res.TokensMatch,
		}
		fmt.Printf("batching: %.1f vs %.1f tok/s, occupancy %.1f rows over %d iterations, tokens match %v\n",
			res.WorkerTokSec, res.BatchedTokSec, res.Occupancy, res.Iterations, res.TokensMatch)
	}

	// Arm 5: speculative decoding — the same greedy fleet without drafting
	// and once per draft source; acceptance rate and throughput per arm, and
	// every arm must reproduce the baseline token streams exactly.
	if *serving {
		fmt.Println("speculative arm: running fleet per draft source...")
		res := bench.CompareSpeculative(train.TestModel(), bench.DefaultSpeculativeOptions())
		rec := &speculativeRecord{
			Sessions:       res.Sessions,
			K:              res.K,
			BaselineTokSec: res.BaselineTokSec,
		}
		for _, a := range res.Arms {
			rec.Arms = append(rec.Arms, specDraftRecord{
				Draft:          a.Draft,
				TokSec:         a.TokSec,
				Speedup:        a.Speedup,
				Drafted:        a.Drafted,
				Accepted:       a.Accepted,
				AcceptanceRate: a.AcceptanceRate,
				TokensMatch:    a.TokensMatch,
			})
			fmt.Printf("speculative: draft=%-8s %.1f tok/s (%.2fx), acceptance %.0f%% (%d/%d), tokens match %v\n",
				a.Draft, a.TokSec, a.Speedup, 100*a.AcceptanceRate, a.Accepted, a.Drafted, a.TokensMatch)
		}
		rep.Speculative = rec
	}

	// Arm 6: replica fleet — the same tenant traffic on one engine and on a
	// fleet with prefix-affinity routing; aggregate throughput, the router's
	// decision mix, per-replica hit rates, and bit-exactness.
	if *serving {
		fmt.Println("fleet arm: running traffic on single engine and replica fleet...")
		res := bench.CompareFleetServing(train.TestModel(), bench.DefaultFleetServingOptions())
		rep.Fleet = &fleetRecord{
			Replicas:        res.Replicas,
			Sessions:        res.Sessions,
			TenantGroups:    res.Groups,
			SingleTokSec:    res.SingleTokS,
			FleetTokSec:     res.FleetTokS,
			Speedup:         res.Speedup(),
			RoutedAffinity:  res.Routing.Affinity,
			RoutedSpilled:   res.Routing.Spilled,
			RoutedBalanced:  res.Routing.Balanced,
			ReplicaHitRates: res.HitRates,
			TokensMatch:     res.TokensMatch,
			Warning:         warningFor(rep.CPUs),
		}
		fmt.Printf("fleet: %.1f vs %.1f tok/s (%.2fx), routing %d/%d/%d affinity/spill/balance, tokens match %v\n",
			res.SingleTokS, res.FleetTokS, res.Speedup(),
			res.Routing.Affinity, res.Routing.Spilled, res.Routing.Balanced, res.TokensMatch)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "topick-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "topick-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(rep.Results))
}
