// Command topick-serve runs the continuous-batching serving engine in two
// modes.
//
// Offline demo (default): trains the demo model, fires a wave of concurrent
// mixed-length generation requests through the scheduler with Token-Picker
// pruned attention on every worker, and prints the fleet-wide throughput,
// pruning, KV-pool, prefix-sharing, and preemption report. With -compare it
// also decodes the same traffic serialized on a single decoder and runs a
// shared-prefix fleet with sharing on vs off, printing both side-by-side
// tables.
//
// HTTP server (-listen): boots the engine behind the OpenAI-style HTTP API
// (POST /v1/completions with optional SSE streaming, GET /v1/stats,
// GET /v1/trace, GET /metrics, GET /healthz, GET /readyz) and runs until
// SIGINT/SIGTERM, then flips /readyz to 503 (draining), waits -drain-grace
// for load balancers to notice, drains in-flight sessions, and exits
// cleanly. With -replicas N (N > 1) the same API fronts a fleet of N
// engine replicas behind a prefix-affinity router (-affinity), adding
// per-replica GET /v1/replicas/{id}/stats and /metrics.
//
// Observability: -trace-buf sizes the lifecycle tracer's ring (served at
// GET /v1/trace), -trace-out records every span event to a JSONL file
// replayable by topick-sim -trace, and -pprof mounts net/http/pprof under
// /debug/pprof/.
//
// Usage:
//
//	topick-serve -sessions 12 -workers 4 -max-new 48 -threshold 1e-3 -compare
//	topick-serve -max-blocks 256 -max-preempts 4   # preempt under pool pressure
//	topick-serve -listen :8080                     # HTTP/SSE front-end
//	topick-serve -listen :8080 -trace-out trace.jsonl -pprof
//	topick-serve -listen :8080 -replicas 2                 # replica fleet
//	curl -s localhost:8080/v1/completions -d '{"prompt":[1,2,3],"max_tokens":8}'
//	curl -s localhost:8080/metrics | grep topick_ttft
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"tokenpicker"
	"tokenpicker/internal/bench"
)

func main() {
	var (
		sessions  = flag.Int("sessions", 12, "concurrent generation requests (offline demo)")
		workers   = flag.Int("workers", 4, "decode workers")
		maxNew    = flag.Int("max-new", 48, "tokens to generate per session")
		promptLen = flag.Int("prompt", 24, "shortest prompt length")
		stride    = flag.Int("stride", 6, "extra prompt tokens per session index")
		threshold = flag.Float64("threshold", 1e-3, "Token-Picker pruning threshold")
		blockRows = flag.Int("block-rows", 32, "KV pool block granularity (rows)")
		parallel  = flag.Int("parallel", 1, "per-worker head parallelism (executor slots; 0 = NumCPU)")
		quantum   = flag.Int("quantum", 1, "generation steps per scheduling quantum")
		maxBatch  = flag.Int("max-batch-tokens", 0, "iteration-level batching: token rows co-scheduled per iteration across sessions (0 = per-session workers)")
		temp      = flag.Float64("temperature", 0, "sampling temperature (0 = greedy)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		compare   = flag.Bool("compare", false, "also run the serialized baseline")
		share     = flag.Bool("share-prefix", true, "share cached prompt-prefix KV blocks across sessions")
		maxBlocks = flag.Int("max-blocks", 0, "KV pool block budget (0 = unbounded; exhaustion preempts sessions)")
		preempts  = flag.Int("max-preempts", 0, "per-session preemption budget (0 = default, negative = reject on exhaustion)")
		specK     = flag.Int("speculate-k", 0, "speculative decoding draft window: verify up to K prompt-lookup draft tokens per engine pass (0 = off; output is bit-identical either way)")
		replicas  = flag.Int("replicas", 1, "engine replicas behind a prefix-affinity router (>1 = fleet mode; token streams stay bit-identical to -replicas 1)")
		affinity  = flag.Bool("affinity", true, "with -replicas >1, route by rendezvous hash of the leading prompt chunks so shared prefixes stay replica-local (false = least-loaded only)")
		listen    = flag.String("listen", "", "serve the HTTP API on this address (e.g. :8080) instead of the offline demo")

		traceOut   = flag.String("trace-out", "", "record the lifecycle trace to this JSONL file (replayable by topick-sim -trace)")
		traceBuf   = flag.Int("trace-buf", 0, "lifecycle tracer ring capacity for GET /v1/trace (0 = off unless -trace-out is set)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (with -listen)")
		drainGrace = flag.Duration("drain-grace", 0, "after SIGTERM, keep answering with /readyz=503 this long before closing the listener")
	)
	flag.Parse()

	// The tracer must exist before the engine: ServeConfig.Tracer is wired at
	// construction. A -trace-out file implies a ring even when -trace-buf is
	// unset, so /v1/trace works whenever recording does.
	var tracer *tokenpicker.Tracer
	var traceFile *os.File
	var traceSink *tokenpicker.TraceJSONLWriter
	if *traceBuf > 0 || *traceOut != "" {
		n := *traceBuf
		if n <= 0 {
			n = 4096
		}
		tracer = tokenpicker.NewTracer(n)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		traceSink = tokenpicker.NewTraceJSONLWriter(f)
		tracer.SetSink(traceSink)
	}
	flushTrace := func() {
		if traceSink == nil {
			return
		}
		if err := traceSink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		}
		fmt.Printf("lifecycle trace written to %s\n", *traceOut)
	}

	fmt.Println("training demo model (cached per process)...")
	res := tokenpicker.TrainDemoModel()
	cfg := res.Params.Cfg
	fmt.Printf("model %s: %d layers x %d heads, head dim %d, context %d\n\n",
		cfg.Name, cfg.Layers, cfg.Heads, cfg.HeadDim, cfg.MaxSeq)

	engineCfg := tokenpicker.ServeConfig{
		Workers:        *workers,
		Quantum:        *quantum,
		MaxBatchTokens: *maxBatch,
		BlockRows:      *blockRows,
		MaxBlocks:      *maxBlocks,
		SharePrefix:    *share,
		MaxPreempts:    *preempts,
		Speculate:      tokenpicker.SpeculateConfig{K: *specK},
		HeadParallel:   tokenpicker.ResolveParallel(*parallel),
		Tracer:         tracer,
		Detokenize:     detok,
		NewKernel:      func() tokenpicker.Kernel { return tokenpicker.NewKernel(*threshold) },
	}

	if *replicas > 1 {
		if *listen == "" {
			fmt.Fprintln(os.Stderr, "-replicas >1 needs -listen: fleet mode serves the HTTP API")
			os.Exit(2)
		}
		if tracer != nil {
			// Replica session ids would collide in one shared ring; requests
			// are correlated across replicas via X-Request-ID instead.
			fmt.Fprintln(os.Stderr, "fleet mode ignores -trace-buf/-trace-out (tracing is per-replica); correlate with X-Request-ID")
			engineCfg.Tracer = nil
		}
		fl := tokenpicker.NewFleet(res.Params, tokenpicker.FleetConfig{
			Replicas: *replicas,
			Affinity: *affinity,
			Serve:    engineCfg,
		})
		serveFleetHTTP(fl, *listen, *pprofOn, *drainGrace)
		return
	}

	srv := tokenpicker.NewServer(res.Params, engineCfg)

	if *listen != "" {
		serveHTTP(srv, *listen, *pprofOn, *drainGrace)
		flushTrace()
		return
	}
	offlineDemo(res, srv, offlineOptions{
		sessions: *sessions, workers: *workers, maxNew: *maxNew,
		promptLen: *promptLen, stride: *stride, threshold: *threshold,
		blockRows: *blockRows, parallel: *parallel, quantum: *quantum,
		specK: *specK,
		temp:  *temp, deadline: *deadline, compare: *compare, share: *share,
	})
	flushTrace()
}

// detok renders a synthetic-vocabulary token for the HTTP text fields.
func detok(tok int) string { return fmt.Sprintf("%d ", tok) }

// serveHTTP runs the engine behind the HTTP front-end until SIGINT/SIGTERM,
// then shuts down in order: flip /readyz to 503 (draining) and wait the
// grace period so load balancers stop routing here, stop accepting
// connections, drain in-flight sessions, print the fleet report.
func serveHTTP(srv *tokenpicker.Server, addr string, pprofOn bool, drainGrace time.Duration) {
	handler := tokenpicker.NewHTTPHandler(srv, tokenpicker.HTTPOptions{
		Model: "topick-demo",
		Detok: detok,
	})
	runHTTP(handler, addr, pprofOn, drainGrace, func() {
		srv.Close()
		rep := srv.Report()
		fmt.Printf("served %d sessions (%d prompt + %d generated tokens), pruning %.2fx\n",
			rep.Admitted, rep.PromptTokens, rep.GenTokens, rep.Attn.PruningRatio())
	})
}

// serveFleetHTTP is serveHTTP for a replica fleet: same lifecycle, fleet
// front-end, router-aware final report.
func serveFleetHTTP(fl *tokenpicker.Fleet, addr string, pprofOn bool, drainGrace time.Duration) {
	handler := tokenpicker.NewFleetHTTPHandler(fl, tokenpicker.HTTPOptions{
		Model: "topick-demo",
		Detok: detok,
	})
	fmt.Printf("fleet mode: %d replicas behind prefix-affinity routing\n", fl.Replicas())
	runHTTP(handler, addr, pprofOn, drainGrace, func() {
		fl.Close()
		rep := fl.Report()
		roll := rep.Rollup()
		fmt.Printf("served %d sessions across %d replicas (%d prompt + %d generated tokens)\n",
			roll.Admitted, fl.Replicas(), roll.PromptTokens, roll.GenTokens)
		fmt.Printf("routing: %d affinity, %d spilled, %d balanced, %d rate-limited, %d rejected\n",
			rep.Routing.Affinity, rep.Routing.Spilled, rep.Routing.Balanced,
			rep.Routing.RateLimited, rep.Routing.Rejected)
	})
}

// runHTTP is the shared server lifecycle: listen, wait for SIGINT/SIGTERM,
// flip /readyz to draining, grace, shut the listener, then let report drain
// the engine(s) and print the final accounting.
func runHTTP(handler *tokenpicker.HTTPHandler, addr string, pprofOn bool, drainGrace time.Duration, report func()) {
	var root http.Handler = handler
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root = mux
	}
	hs := &http.Server{Addr: addr, Handler: root}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("HTTP API listening on %s (POST /v1/completions, GET /v1/stats, GET /metrics)\n", addr)
	if pprofOn {
		fmt.Printf("pprof mounted at http://%s/debug/pprof/\n", addr)
	}

	select {
	case <-ctx.Done():
		fmt.Println("\nsignal received, draining...")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "http: %v\n", err)
		os.Exit(1)
	}
	handler.SetDraining(true)
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
	}
	report()
	fmt.Println("clean shutdown")
}

type offlineOptions struct {
	sessions, workers, maxNew, promptLen, stride int
	blockRows, parallel, quantum, specK          int
	threshold, temp                              float64
	deadline                                     time.Duration
	compare, share                               bool
}

func offlineDemo(res *tokenpicker.TrainResult, srv *tokenpicker.Server, o offlineOptions) {
	cfg := res.Params.Cfg
	if o.sessions < 1 || o.promptLen < 1 || o.stride < 0 {
		fmt.Fprintln(os.Stderr, "need -sessions >= 1, -prompt >= 1, -stride >= 0")
		os.Exit(2)
	}
	if longest := o.promptLen + (o.sessions-1)*o.stride; longest >= len(res.Held) {
		fmt.Fprintf(os.Stderr, "longest prompt %d exceeds the %d-token held-out stream; lower -sessions/-prompt/-stride\n",
			longest, len(res.Held))
		os.Exit(2)
	}

	type outcome struct {
		prompt int
		res    tokenpicker.ServeResult
	}
	outcomes := make([]outcome, o.sessions)
	start := time.Now()
	streams := make([]*tokenpicker.ServeStream, o.sessions)
	for i := 0; i < o.sessions; i++ {
		l := o.promptLen + i*o.stride
		startTok := (i * 17) % (len(res.Held) - l)
		ctx := context.Background()
		if o.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.deadline)
			defer cancel()
		}
		var sampling tokenpicker.SamplingConfig
		if o.temp > 0 {
			sampling = tokenpicker.SamplingConfig{Temperature: o.temp, Seed: int64(i + 1)}
		}
		st, err := srv.Submit(ctx, tokenpicker.GenerateRequest{
			Prompt:    res.Held[startTok : startTok+l],
			MaxTokens: o.maxNew,
			Sampling:  sampling,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "submit %d: %v\n", i, err)
			os.Exit(1)
		}
		streams[i] = st
		outcomes[i].prompt = l
	}
	for i, st := range streams {
		for range st.Events() {
			// A real consumer would forward events as they stream in; the
			// demo only accounts for them.
		}
		outcomes[i].res = st.Result()
	}
	wall := time.Since(start)
	srv.Close()
	rep := srv.Report()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "session\tprompt\tgenerated\tfinish\tTTFT\telapsed")
	for i, o := range outcomes {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%v\t%v\n", i, o.prompt, o.res.Usage.GeneratedTokens, o.res.Reason,
			o.res.TTFT.Round(time.Millisecond), o.res.Elapsed.Round(time.Millisecond))
	}
	w.Flush()

	var gen int64
	for _, o := range outcomes {
		gen += int64(o.res.Usage.GeneratedTokens)
	}
	fmt.Printf("\nfleet report (%d sessions, %d workers, quantum %d):\n",
		rep.Admitted, o.workers, o.quantum)
	fmt.Printf("  wall time            : %v (%.1f generated tokens/s)\n",
		wall.Round(time.Millisecond), float64(gen)/wall.Seconds())
	fmt.Printf("  peak concurrency     : %d sessions in flight\n", rep.PeakConcurrent)
	fmt.Printf("  prompt/gen tokens    : %d / %d\n", rep.PromptTokens, gen)
	fmt.Printf("  fleet pruning ratio  : %.2fx (%d of %d context tokens fetched)\n",
		rep.Attn.PruningRatio(), rep.Attn.Kept, rep.Attn.Tokens)
	fmt.Printf("  K access reduction   : %.2fx, total KV reduction %.2fx\n",
		rep.Attn.KReduction(), rep.Attn.TotalReduction())
	fmt.Printf("  KV pool              : %s\n", rep.Pool)
	if o.share {
		fmt.Printf("  prefix index         : %d chunks published, hit rate %.0f%%, %d KV rows reused (%d from tails)\n",
			rep.Prefix.Published, 100*rep.Prefix.HitRate(), rep.Prefix.RowsReused, rep.Prefix.TailRows)
	}
	if rep.Preempted > 0 {
		fmt.Printf("  preemptions          : %d (re-computed %d generated tokens)\n",
			rep.Preempted, rep.RecomputeTokens)
	}
	if o.specK > 0 {
		m := srv.Metrics()
		drafted, accepted := m.SpecDrafted.Value(), m.SpecAccepted.Value()
		rate := 0.0
		if drafted > 0 {
			rate = float64(accepted) / float64(drafted)
		}
		fmt.Printf("  speculation (k=%d)    : %d drafted, %d accepted (%.0f%%), %d verify passes\n",
			o.specK, drafted, accepted, 100*rate, m.SpecVerifies.Value())
	}
	eager := int64(o.sessions) * int64(cfg.MaxSeq) * int64(cfg.Layers*cfg.Heads*2)
	fmt.Printf("  vs eager allocation  : %d rows backed instead of %d (%.1fx less)\n",
		rep.Pool.AllocatedRows(), eager, float64(eager)/float64(rep.Pool.AllocatedRows()))

	if o.compare {
		fmt.Println()
		cmp := bench.CompareServing(res, bench.ServingOptions{
			Sessions: o.sessions, PromptLen: o.promptLen, Stride: o.stride,
			MaxNew: o.maxNew, Workers: o.workers, BlockRows: o.blockRows,
			Threshold:    o.threshold,
			HeadParallel: tokenpicker.ResolveParallel(o.parallel),
		})
		fmt.Println(bench.ServingTable(cmp).String())

		// The wave above uses distinct prompts; the prefix-sharing win needs
		// repeated prefixes (system prompts, chat history), so demo it on a
		// shared-prefix fleet.
		po := bench.DefaultPrefixServingOptions()
		po.Sessions = o.sessions
		po.MaxNew = o.maxNew
		po.Workers = o.workers
		po.BlockRows = o.blockRows
		po.Threshold = o.threshold
		fmt.Println(bench.PrefixServingTable(bench.ComparePrefixServing(res, po)).String())
	}
}
