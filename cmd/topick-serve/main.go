// Command topick-serve demonstrates the continuous-batching serving engine:
// it trains the demo model, fires a wave of concurrent mixed-length
// generation requests through the scheduler with Token-Picker pruned
// attention on every worker, and prints the fleet-wide throughput, pruning,
// KV-pool, prefix-sharing, and preemption report. With -compare it also
// decodes the same traffic serialized on a single decoder and runs a
// shared-prefix fleet with sharing on vs off, printing both side-by-side
// tables.
//
// Usage:
//
//	topick-serve -sessions 12 -workers 4 -max-new 48 -threshold 1e-3 -compare
//	topick-serve -max-blocks 256 -max-preempts 4   # preempt under pool pressure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"tokenpicker"
	"tokenpicker/internal/bench"
)

func main() {
	var (
		sessions  = flag.Int("sessions", 12, "concurrent generation requests")
		workers   = flag.Int("workers", 4, "decode workers")
		maxNew    = flag.Int("max-new", 48, "tokens to generate per session")
		promptLen = flag.Int("prompt", 24, "shortest prompt length")
		stride    = flag.Int("stride", 6, "extra prompt tokens per session index")
		threshold = flag.Float64("threshold", 1e-3, "Token-Picker pruning threshold")
		blockRows = flag.Int("block-rows", 32, "KV pool block granularity (rows)")
		parallel  = flag.Int("parallel", 1, "per-worker head parallelism (executor slots; 0 = NumCPU)")
		quantum   = flag.Int("quantum", 1, "generation steps per scheduling quantum")
		temp      = flag.Float64("temperature", 0, "sampling temperature (0 = greedy)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		compare   = flag.Bool("compare", false, "also run the serialized baseline")
		share     = flag.Bool("share-prefix", true, "share cached prompt-prefix KV blocks across sessions")
		maxBlocks = flag.Int("max-blocks", 0, "KV pool block budget (0 = unbounded; exhaustion preempts sessions)")
		preempts  = flag.Int("max-preempts", 0, "per-session preemption budget (0 = default, negative = reject on exhaustion)")
	)
	flag.Parse()

	fmt.Println("training demo model (cached per process)...")
	res := tokenpicker.TrainDemoModel()
	cfg := res.Params.Cfg
	fmt.Printf("model %s: %d layers x %d heads, head dim %d, context %d\n\n",
		cfg.Name, cfg.Layers, cfg.Heads, cfg.HeadDim, cfg.MaxSeq)

	if *sessions < 1 || *promptLen < 1 || *stride < 0 {
		fmt.Fprintln(os.Stderr, "need -sessions >= 1, -prompt >= 1, -stride >= 0")
		os.Exit(2)
	}
	if longest := *promptLen + (*sessions-1)**stride; longest >= len(res.Held) {
		fmt.Fprintf(os.Stderr, "longest prompt %d exceeds the %d-token held-out stream; lower -sessions/-prompt/-stride\n",
			longest, len(res.Held))
		os.Exit(2)
	}

	srv := tokenpicker.NewServer(res.Params, tokenpicker.ServeConfig{
		Workers:      *workers,
		Quantum:      *quantum,
		BlockRows:    *blockRows,
		MaxBlocks:    *maxBlocks,
		SharePrefix:  *share,
		MaxPreempts:  *preempts,
		HeadParallel: tokenpicker.ResolveParallel(*parallel),
		NewKernel:    func() tokenpicker.Kernel { return tokenpicker.NewKernel(*threshold) },
	})

	type outcome struct {
		prompt int
		res    tokenpicker.ServeResult
	}
	outcomes := make([]outcome, *sessions)
	start := time.Now()
	streams := make([]*tokenpicker.ServeStream, *sessions)
	for i := 0; i < *sessions; i++ {
		l := *promptLen + i**stride
		startTok := (i * 17) % (len(res.Held) - l)
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		st, err := srv.Submit(ctx, tokenpicker.ServeRequest{
			Prompt:       res.Held[startTok : startTok+l],
			MaxNewTokens: *maxNew,
			Temperature:  *temp,
			Seed:         int64(i + 1),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "submit %d: %v\n", i, err)
			os.Exit(1)
		}
		streams[i] = st
		outcomes[i].prompt = l
	}
	for i, st := range streams {
		for range st.Tokens {
			// A real consumer would forward tokens as they stream in; the
			// demo only accounts for them.
		}
		outcomes[i].res = st.Result()
	}
	wall := time.Since(start)
	srv.Close()
	rep := srv.Report()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "session\tprompt\tgenerated\tfinish\tTTFT\telapsed")
	for i, o := range outcomes {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%v\t%v\n", i, o.prompt, o.res.Generated, o.res.Reason,
			o.res.TTFT.Round(time.Millisecond), o.res.Elapsed.Round(time.Millisecond))
	}
	w.Flush()

	var gen int64
	for _, o := range outcomes {
		gen += int64(o.res.Generated)
	}
	fmt.Printf("\nfleet report (%d sessions, %d workers, quantum %d):\n",
		rep.Admitted, *workers, *quantum)
	fmt.Printf("  wall time            : %v (%.1f generated tokens/s)\n",
		wall.Round(time.Millisecond), float64(gen)/wall.Seconds())
	fmt.Printf("  peak concurrency     : %d sessions in flight\n", rep.PeakConcurrent)
	fmt.Printf("  prompt/gen tokens    : %d / %d\n", rep.PromptTokens, gen)
	fmt.Printf("  fleet pruning ratio  : %.2fx (%d of %d context tokens fetched)\n",
		rep.Attn.PruningRatio(), rep.Attn.Kept, rep.Attn.Tokens)
	fmt.Printf("  K access reduction   : %.2fx, total KV reduction %.2fx\n",
		rep.Attn.KReduction(), rep.Attn.TotalReduction())
	fmt.Printf("  KV pool              : %s\n", rep.Pool)
	if *share {
		fmt.Printf("  prefix index         : %d chunks published, hit rate %.0f%%, %d KV rows reused (%d from tails)\n",
			rep.Prefix.Published, 100*rep.Prefix.HitRate(), rep.Prefix.RowsReused, rep.Prefix.TailRows)
	}
	if rep.Preempted > 0 {
		fmt.Printf("  preemptions          : %d (re-computed %d generated tokens)\n",
			rep.Preempted, rep.RecomputeTokens)
	}
	eager := int64(*sessions) * int64(cfg.MaxSeq) * int64(cfg.Layers*cfg.Heads*2)
	fmt.Printf("  vs eager allocation  : %d rows backed instead of %d (%.1fx less)\n",
		rep.Pool.AllocatedRows(), eager, float64(eager)/float64(rep.Pool.AllocatedRows()))

	if *compare {
		fmt.Println()
		cmp := bench.CompareServing(res, bench.ServingOptions{
			Sessions: *sessions, PromptLen: *promptLen, Stride: *stride,
			MaxNew: *maxNew, Workers: *workers, BlockRows: *blockRows,
			Threshold:    *threshold,
			HeadParallel: tokenpicker.ResolveParallel(*parallel),
		})
		fmt.Println(bench.ServingTable(cmp).String())

		// The wave above uses distinct prompts; the prefix-sharing win needs
		// repeated prefixes (system prompts, chat history), so demo it on a
		// shared-prefix fleet.
		po := bench.DefaultPrefixServingOptions()
		po.Sessions = *sessions
		po.MaxNew = *maxNew
		po.Workers = *workers
		po.BlockRows = *blockRows
		po.Threshold = *threshold
		fmt.Println(bench.PrefixServingTable(bench.ComparePrefixServing(res, po)).String())
	}
}
