// Command topick-lint runs the project's static analysis suite
// (internal/lint) over the whole module: noalloc, metricsdiscipline,
// tracediscipline, and errdiscipline, plus drift checks of the generated
// manifests (docs/METRICS.md, docs/NOALLOC.md).
//
// Usage:
//
//	topick-lint [-json] [-write-manifest] [packages]
//
// The package argument is accepted for familiarity ("./...") but the suite
// always analyzes the whole module: the invariants it checks — the noalloc
// call graph, duplicate metric registrations, the sentinel roster — are
// cross-package properties. Exit status 1 means findings (or manifest
// drift), 2 means the tree failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tokenpicker/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	writeManifest := flag.Bool("write-manifest", false, "regenerate docs/METRICS.md and docs/NOALLOC.md and exit")
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Parse()

	status, err := run(*dir, *jsonOut, *writeManifest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topick-lint:", err)
		os.Exit(2)
	}
	os.Exit(status)
}

// jsonFinding is the machine-readable finding schema (-json).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(dir string, jsonOut, writeManifest bool) (int, error) {
	loader, err := lint.NewLoader(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return 0, err
	}
	unit := &lint.Unit{Fset: loader.Fset, Module: loader.Module, Pkgs: pkgs}

	metricsPath := filepath.Join(loader.Root, "docs", "METRICS.md")
	noallocPath := filepath.Join(loader.Root, "docs", "NOALLOC.md")
	metricsManifest := lint.Manifest(lint.CollectMetrics(unit))
	noallocManifest := lint.NoAllocManifest(lint.NoAllocRoots(pkgs))

	if writeManifest {
		if err := os.MkdirAll(filepath.Dir(metricsPath), 0o755); err != nil {
			return 0, err
		}
		if err := os.WriteFile(metricsPath, []byte(metricsManifest), 0o644); err != nil {
			return 0, err
		}
		if err := os.WriteFile(noallocPath, []byte(noallocManifest), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s and %s\n", rel(loader.Root, metricsPath), rel(loader.Root, noallocPath))
		return 0, nil
	}

	diags := lint.Run(loader.Fset, loader.Module, pkgs, lint.Analyzers())
	diags = append(diags, checkManifest(metricsPath, metricsManifest, "metricsdiscipline")...)
	diags = append(diags, checkManifest(noallocPath, noallocManifest, "noalloc")...)

	if jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     rel(loader.Root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(loader.Root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "topick-lint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// checkManifest diffs a generated manifest against its checked-in file.
func checkManifest(path, want, analyzer string) []lint.Diagnostic {
	got, err := os.ReadFile(path)
	if err != nil {
		return []lint.Diagnostic{{
			Analyzer: analyzer,
			Message: fmt.Sprintf("manifest %s missing (%v): run `go run ./cmd/topick-lint -write-manifest`",
				filepath.Base(path), err),
		}}
	}
	if string(got) != want {
		return []lint.Diagnostic{{
			Analyzer: analyzer,
			Message: fmt.Sprintf("manifest %s drifted from the tree: run `go run ./cmd/topick-lint -write-manifest` and commit the diff",
				filepath.Base(path)),
		}}
	}
	return nil
}

// rel renders path relative to root when possible.
func rel(root, path string) string {
	if path == "" {
		return "(manifest)"
	}
	if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
