// Command topick-gen generates token streams from the demo model with the
// chosen attention kernel and reports the pruning statistics of the run —
// a minimal end-to-end demonstration that pruned attention still produces
// the model's distribution.
//
// Usage:
//
//	topick-gen -tokens 128 -threshold 1e-3 -kernel topick
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"tokenpicker"
	"tokenpicker/internal/tensor"
)

func main() {
	var (
		nTokens   = flag.Int("tokens", 96, "tokens to generate")
		threshold = flag.Float64("threshold", 1e-3, "pruning threshold")
		kernel    = flag.String("kernel", "topick", "attention kernel: topick|exact")
		promptLen = flag.Int("prompt", 64, "prompt length from the held-out corpus")
		temp      = flag.Float64("temperature", 0.8, "sampling temperature")
		seed      = flag.Int64("seed", 7, "sampling seed")
	)
	flag.Parse()

	res := tokenpicker.TrainDemoModel()
	var k tokenpicker.Kernel
	var tp *tokenpicker.TokenPickerKernel
	switch *kernel {
	case "topick":
		tp = tokenpicker.NewKernel(*threshold)
		k = tp
	case "exact":
		k = tokenpicker.NewExactKernel()
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	dec := tokenpicker.NewDecoder(res.Params, k)
	prompt := res.Held[:*promptLen]
	logits, err := dec.Prompt(prompt)
	if err != nil {
		log.Fatalf("prompt: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("prompt tokens: %v\n", prompt[len(prompt)-16:])
	fmt.Printf("generated    : ")
	tok := sample(rng, logits, float32(*temp))
	for i := 0; i < *nTokens; i++ {
		fmt.Printf("%d ", tok)
		logits, err = dec.Step(tok)
		if err != nil {
			// ErrContextFull: the window is exhausted; stop cleanly.
			fmt.Printf("\n(stopped early: %v)", err)
			break
		}
		tok = sample(rng, logits, float32(*temp))
	}
	fmt.Println()

	if tp != nil {
		st := tp.Stats()
		fmt.Printf("\ngeneration-phase transfer statistics (threshold %g):\n", *threshold)
		fmt.Printf("  attention instances : %d\n", st.Instances)
		fmt.Printf("  context tokens      : %d\n", st.Tokens)
		fmt.Printf("  V fetched (kept)    : %d  => pruning ratio %.1fx\n", st.Kept, st.PruningRatio())
		fmt.Printf("  K bytes             : %d of %d  => reduction %.2fx\n", st.KBytes, st.BaselineKBytes, st.KReduction())
		fmt.Printf("  K+V total reduction : %.2fx\n", st.TotalReduction())
		fmt.Printf("  chunk fetches       : %v\n", st.ChunkFetches)
	}
}

// sample draws from softmax(logits/temp).
func sample(rng *rand.Rand, logits []float32, temp float32) int {
	scaled := make([]float32, len(logits))
	for i, v := range logits {
		scaled[i] = v / temp
	}
	probs := make([]float32, len(scaled))
	tensor.Softmax(probs, scaled)
	u := rng.Float64()
	var acc float64
	for i, p := range probs {
		acc += float64(p)
		if u <= acc {
			return i
		}
	}
	return len(probs) - 1
}
