// Command topick-gen generates token streams from the demo model with the
// chosen attention kernel and reports the pruning statistics of the run —
// a minimal end-to-end demonstration that pruned attention still produces
// the model's distribution.
//
// Usage:
//
//	topick-gen -tokens 128 -threshold 1e-3 -kernel topick
package main

import (
	"flag"
	"fmt"
	"log"

	"tokenpicker"
)

func main() {
	var (
		nTokens   = flag.Int("tokens", 96, "tokens to generate")
		threshold = flag.Float64("threshold", 1e-3, "pruning threshold")
		kernel    = flag.String("kernel", "topick", "attention kernel: topick|exact")
		promptLen = flag.Int("prompt", 64, "prompt length from the held-out corpus")
		temp      = flag.Float64("temperature", 0.8, "sampling temperature (0 = greedy)")
		seed      = flag.Int64("seed", 7, "sampling seed (with -temperature > 0)")
		topK      = flag.Int("top-k", 0, "keep only the K most likely tokens (0 = off)")
		topP      = flag.Float64("top-p", 0, "nucleus sampling mass (0 = off)")
		specK     = flag.Int("speculate-k", 0, "speculative decoding draft window (0 = off; output is bit-identical either way)")
		draftSrc  = flag.String("draft", "ngram", "draft source with -speculate-k: ngram (prompt lookup) or decoder (pruned draft model)")
	)
	flag.Parse()

	res := tokenpicker.TrainDemoModel()
	var k tokenpicker.Kernel
	var tp *tokenpicker.TokenPickerKernel
	switch *kernel {
	case "topick":
		tp = tokenpicker.NewKernel(*threshold)
		k = tp
	case "exact":
		k = tokenpicker.NewExactKernel()
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	dec := tokenpicker.NewDecoder(res.Params, k)
	prompt := res.Held[:*promptLen]
	logits, err := dec.Prompt(prompt)
	if err != nil {
		log.Fatalf("prompt: %v", err)
	}

	// The same composable sampler chain the serving engine runs; its
	// typed validation rejects contradictory flag combinations (e.g.
	// -temperature 0 with -seed).
	cfg := tokenpicker.SamplingConfig{Temperature: *temp, TopK: *topK, TopP: *topP, Seed: *seed}
	if *temp == 0 {
		// The seed default only exists for the sampling path; forward it to
		// greedy validation only when the user explicitly asked for it, so
		// `-temperature 0` alone works while `-temperature 0 -seed 9` gets
		// the typed contradiction error.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["seed"] {
			cfg.Seed = 0
		}
	}
	sampler, err := tokenpicker.NewSampler(cfg)
	if err != nil {
		log.Fatalf("sampling config: %v", err)
	}
	history := append([]int(nil), prompt...)
	fmt.Printf("prompt tokens: %v\n", prompt[len(prompt)-16:])
	fmt.Printf("generated    : ")
	tok := sampler.Sample(logits, history)
	if *specK > 0 {
		speculate(res, dec, k, sampler, &history, tok, *nTokens, *specK, *draftSrc, *threshold)
	} else {
		for i := 0; i < *nTokens; i++ {
			fmt.Printf("%d ", tok)
			history = append(history, tok)
			logits, err = dec.Step(tok)
			if err != nil {
				// ErrContextFull: the window is exhausted; stop cleanly.
				fmt.Printf("\n(stopped early: %v)", err)
				break
			}
			tok = sampler.Sample(logits, history)
		}
		fmt.Println()
	}

	if tp != nil {
		st := tp.Stats()
		fmt.Printf("\ngeneration-phase transfer statistics (threshold %g):\n", *threshold)
		fmt.Printf("  attention instances : %d\n", st.Instances)
		fmt.Printf("  context tokens      : %d\n", st.Tokens)
		fmt.Printf("  V fetched (kept)    : %d  => pruning ratio %.1fx\n", st.Kept, st.PruningRatio())
		fmt.Printf("  K bytes             : %d of %d  => reduction %.2fx\n", st.KBytes, st.BaselineKBytes, st.KReduction())
		fmt.Printf("  K+V total reduction : %.2fx\n", st.TotalReduction())
		fmt.Printf("  chunk fetches       : %v\n", st.ChunkFetches)
	}
}

// genEmitter adapts the CLI's print-and-append loop to the speculative
// decoder's per-token callback; the sampler consumes RNG once per emitted
// token, exactly as the plain loop does, so the stream is bit-identical.
type genEmitter struct {
	sampler *tokenpicker.SamplerChain
	history *[]int
	limit   int // total tokens to print (including the first, pre-spec one)
	printed int
}

func (e *genEmitter) Emit(logits []float32) (int, bool) {
	tok := e.sampler.Sample(logits, *e.history)
	fmt.Printf("%d ", tok)
	*e.history = append(*e.history, tok)
	e.printed++
	return tok, e.printed >= e.limit
}

// speculate drives draft-and-verify generation: each pass advances the
// pending token plus up to specK draft tokens through one batched engine
// step and keeps the longest accepted prefix. first is the token already
// sampled from the prompt logits.
func speculate(res *tokenpicker.TrainResult, dec *tokenpicker.Decoder, k tokenpicker.Kernel,
	sampler *tokenpicker.SamplerChain, history *[]int, first, nTokens, specK int, draftSrc string, threshold float64) {
	var draft tokenpicker.DraftSource
	switch draftSrc {
	case "ngram":
		draft = &tokenpicker.NgramDraft{}
	case "decoder":
		// The draft model is the same weights under aggressively pruned
		// attention: cheap proposals, exact verification.
		draft = &tokenpicker.DecoderDraft{Dec: tokenpicker.NewDecoder(res.Params, tokenpicker.NewKernel(threshold*100))}
	default:
		log.Fatalf("unknown draft source %q", draftSrc)
	}
	sd := tokenpicker.NewSpecDecoder(dec, draft, specK)
	eng := tokenpicker.NewBatchEngine(res.Params)
	em := &genEmitter{sampler: sampler, history: history, limit: nTokens}

	fmt.Printf("%d ", first)
	*history = append(*history, first)
	em.printed = 1
	for em.printed < nTokens {
		if _, err := sd.Step(eng, k, nil, *history, nTokens-em.printed-1, em); err != nil {
			// ErrContextFull: the window is exhausted; stop cleanly.
			fmt.Printf("\n(stopped early: %v)", err)
			break
		}
	}
	fmt.Println()
	st := sd.Stats()
	fmt.Printf("\nspeculation (k=%d, draft=%s): %d drafted, %d accepted (%.0f%% acceptance), %d verify passes\n",
		specK, draftSrc, st.Drafted, st.Accepted, 100*st.AcceptanceRate(), st.Passes)
}
