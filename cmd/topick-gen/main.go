// Command topick-gen generates token streams from the demo model with the
// chosen attention kernel and reports the pruning statistics of the run —
// a minimal end-to-end demonstration that pruned attention still produces
// the model's distribution.
//
// Usage:
//
//	topick-gen -tokens 128 -threshold 1e-3 -kernel topick
package main

import (
	"flag"
	"fmt"
	"log"

	"tokenpicker"
)

func main() {
	var (
		nTokens   = flag.Int("tokens", 96, "tokens to generate")
		threshold = flag.Float64("threshold", 1e-3, "pruning threshold")
		kernel    = flag.String("kernel", "topick", "attention kernel: topick|exact")
		promptLen = flag.Int("prompt", 64, "prompt length from the held-out corpus")
		temp      = flag.Float64("temperature", 0.8, "sampling temperature (0 = greedy)")
		seed      = flag.Int64("seed", 7, "sampling seed (with -temperature > 0)")
		topK      = flag.Int("top-k", 0, "keep only the K most likely tokens (0 = off)")
		topP      = flag.Float64("top-p", 0, "nucleus sampling mass (0 = off)")
	)
	flag.Parse()

	res := tokenpicker.TrainDemoModel()
	var k tokenpicker.Kernel
	var tp *tokenpicker.TokenPickerKernel
	switch *kernel {
	case "topick":
		tp = tokenpicker.NewKernel(*threshold)
		k = tp
	case "exact":
		k = tokenpicker.NewExactKernel()
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	dec := tokenpicker.NewDecoder(res.Params, k)
	prompt := res.Held[:*promptLen]
	logits, err := dec.Prompt(prompt)
	if err != nil {
		log.Fatalf("prompt: %v", err)
	}

	// The same composable sampler chain the serving engine runs; its
	// typed validation rejects contradictory flag combinations (e.g.
	// -temperature 0 with -seed).
	cfg := tokenpicker.SamplingConfig{Temperature: *temp, TopK: *topK, TopP: *topP, Seed: *seed}
	if *temp == 0 {
		// The seed default only exists for the sampling path; forward it to
		// greedy validation only when the user explicitly asked for it, so
		// `-temperature 0` alone works while `-temperature 0 -seed 9` gets
		// the typed contradiction error.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["seed"] {
			cfg.Seed = 0
		}
	}
	sampler, err := tokenpicker.NewSampler(cfg)
	if err != nil {
		log.Fatalf("sampling config: %v", err)
	}
	history := append([]int(nil), prompt...)
	fmt.Printf("prompt tokens: %v\n", prompt[len(prompt)-16:])
	fmt.Printf("generated    : ")
	tok := sampler.Sample(logits, history)
	for i := 0; i < *nTokens; i++ {
		fmt.Printf("%d ", tok)
		history = append(history, tok)
		logits, err = dec.Step(tok)
		if err != nil {
			// ErrContextFull: the window is exhausted; stop cleanly.
			fmt.Printf("\n(stopped early: %v)", err)
			break
		}
		tok = sampler.Sample(logits, history)
	}
	fmt.Println()

	if tp != nil {
		st := tp.Stats()
		fmt.Printf("\ngeneration-phase transfer statistics (threshold %g):\n", *threshold)
		fmt.Printf("  attention instances : %d\n", st.Instances)
		fmt.Printf("  context tokens      : %d\n", st.Tokens)
		fmt.Printf("  V fetched (kept)    : %d  => pruning ratio %.1fx\n", st.Kept, st.PruningRatio())
		fmt.Printf("  K bytes             : %d of %d  => reduction %.2fx\n", st.KBytes, st.BaselineKBytes, st.KReduction())
		fmt.Printf("  K+V total reduction : %.2fx\n", st.TotalReduction())
		fmt.Printf("  chunk fetches       : %v\n", st.ChunkFetches)
	}
}
