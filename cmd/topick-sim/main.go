// Command topick-sim runs the cycle-level accelerator simulator on a
// synthetic attention workload — or on a recorded serving trace — and
// prints cycles, traffic, utilization, and the energy breakdown for each
// hardware configuration.
//
// With -trace, the workload is replayed from a JSONL lifecycle trace
// recorded by `topick-serve -trace-out` (or the serving benchmarks): every
// decode, replay, and prefill step in the trace becomes one attention
// instance at that step's real context length, so the simulator sees the
// context-length distribution of actual serving traffic instead of a fixed
// synthetic size (co-simulation, ROADMAP item 5).
//
// Usage:
//
//	topick-sim -context 1024 -dim 64 -threshold 1e-3 -instances 8
//	topick-sim -trace trace.jsonl -trace-steps 256
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"tokenpicker/internal/core"
	"tokenpicker/internal/fixed"
	"tokenpicker/internal/obs"
	"tokenpicker/internal/sim/arch"
)

func main() {
	var (
		context    = flag.Int("context", 1024, "cached tokens per instance")
		dim        = flag.Int("dim", 64, "head dimension")
		threshold  = flag.Float64("threshold", 1e-3, "pruning threshold")
		instances  = flag.Int("instances", 8, "attention instances to simulate")
		seed       = flag.Int64("seed", 1, "workload seed")
		peaked     = flag.Bool("peaked", true, "inject query-aligned keys (sharp softmax)")
		traceIn    = flag.String("trace", "", "replay a JSONL serving trace (topick-serve -trace-out) instead of the synthetic workload")
		traceSteps = flag.Int("trace-steps", 256, "cap on replayed trace steps (evenly subsampled; 0 = all)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var insts []arch.Instance
	if *traceIn != "" {
		insts = traceInstances(rng, *traceIn, *traceSteps, *dim, *peaked)
	} else {
		insts = make([]arch.Instance, *instances)
		for i := range insts {
			insts[i] = synthInstance(rng, *context, *dim, *peaked)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\tcycles\tspeedup\tK bytes\tV bytes\tkept\tutil\tenergy (pJ)\tbreakdown")
	var baseCycles int64
	var baseEnergy float64
	for _, mode := range []arch.Mode{arch.ModeBaseline, arch.ModeProbEst, arch.ModeToPick, arch.ModeToPickInOrder} {
		sim := arch.MustNew(arch.DefaultConfig(mode, *threshold))
		var total arch.Result
		for _, inst := range insts {
			total.Accumulate(sim.RunInstance(inst))
		}
		if mode == arch.ModeBaseline {
			baseCycles = total.Cycles
			baseEnergy = total.Energy.Total()
		}
		fmt.Fprintf(w, "%v\t%d\t%.2fx\t%d\t%d\t%d/%d\t%.2f\t%.3g\t%s\n",
			mode, total.Cycles, float64(baseCycles)/float64(total.Cycles),
			total.KBytes, total.VBytes, total.Kept, total.N,
			total.Utilization(sim.Config().Lanes), total.Energy.Total(), total.Energy.String())
	}
	w.Flush()
	fmt.Printf("\nenergy efficiency of ToPick vs baseline: see table (baseline %.3g pJ)\n", baseEnergy)
}

// traceInstances loads a recorded serving trace and lowers its attention
// steps onto simulator instances: the key/query content is synthetic (the
// trace records shape, not tensors), but every instance's context length is
// one real step's KV row count, so the replay reproduces the serving
// workload's context-length distribution.
func traceInstances(rng *rand.Rand, path string, maxSteps, dim int, peaked bool) []arch.Instance {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topick-sim: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topick-sim: %v\n", err)
		os.Exit(1)
	}
	// A ring-truncated trace (sessions missing their submit or finish) is
	// still a valid workload sample; a corrupt one is not.
	if err := obs.ValidateTimeline(events, true); err != nil {
		fmt.Fprintf(os.Stderr, "topick-sim: inconsistent trace: %v\n", err)
		os.Exit(1)
	}
	sum := obs.Summarize(events)
	steps := obs.ReplaySteps(events)
	if len(steps) == 0 {
		fmt.Fprintf(os.Stderr, "topick-sim: trace %s holds no attention steps\n", path)
		os.Exit(1)
	}
	total := len(steps)
	steps = obs.SampleEvenly(steps, maxSteps)
	fmt.Printf("trace %s: %d sessions, %d decode + %d replay steps, %d prefill chunks, peak batch %d\n",
		path, sum.Sessions, sum.DecodeSteps, sum.ReplaySteps, sum.PrefillChunks, sum.MaxBatch)
	fmt.Printf("replaying %d of %d steps (context rows %d max)\n\n", len(steps), total, sum.MaxRows)
	insts := make([]arch.Instance, 0, len(steps))
	for _, s := range steps {
		if s.Rows < 1 {
			continue
		}
		insts = append(insts, synthInstance(rng, int(s.Rows), dim, peaked))
	}
	return insts
}

// synthInstance builds one synthetic attention instance.
func synthInstance(rng *rand.Rand, n, dim int, peaked bool) arch.Instance {
	qf := make([]float32, dim)
	for i := range qf {
		qf[i] = float32(rng.NormFloat64())
	}
	kf := make([][]float32, n)
	maxMag := 0.0
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		if peaked && i%23 == 0 {
			for j := range row {
				row[j] += qf[j] * 1.5
			}
		}
		kf[i] = row
		for _, v := range row {
			if m := math.Abs(float64(v)); m > maxMag {
				maxMag = m
			}
		}
	}
	kScale := fixed.ScaleFor(maxMag, 12)
	kRows := make([]fixed.Vector, n)
	for i := range kf {
		kRows[i] = fixed.QuantizeWithScale(kf[i], 12, kScale).Data
	}
	bias := make([]float32, n)
	for i := range bias {
		bias[i] = -0.02 * float32(n-1-i)
	}
	return arch.Instance{
		In: core.Inputs{
			Q:      fixed.Quantize(qf, 12),
			K:      kRows,
			KScale: kScale,
			Scale:  1 / math.Sqrt(float64(dim)),
			Bias:   bias,
		},
		Dim: dim,
	}
}
