// Command topick-sim runs the cycle-level accelerator simulator on a
// synthetic attention workload and prints cycles, traffic, utilization, and
// the energy breakdown for each hardware configuration.
//
// Usage:
//
//	topick-sim -context 1024 -dim 64 -threshold 1e-3 -instances 8
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"tokenpicker/internal/core"
	"tokenpicker/internal/fixed"
	"tokenpicker/internal/sim/arch"
)

func main() {
	var (
		context   = flag.Int("context", 1024, "cached tokens per instance")
		dim       = flag.Int("dim", 64, "head dimension")
		threshold = flag.Float64("threshold", 1e-3, "pruning threshold")
		instances = flag.Int("instances", 8, "attention instances to simulate")
		seed      = flag.Int64("seed", 1, "workload seed")
		peaked    = flag.Bool("peaked", true, "inject query-aligned keys (sharp softmax)")
	)
	flag.Parse()

	insts := make([]arch.Instance, *instances)
	rng := rand.New(rand.NewSource(*seed))
	for i := range insts {
		insts[i] = synthInstance(rng, *context, *dim, *peaked)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "config\tcycles\tspeedup\tK bytes\tV bytes\tkept\tutil\tenergy (pJ)\tbreakdown")
	var baseCycles int64
	var baseEnergy float64
	for _, mode := range []arch.Mode{arch.ModeBaseline, arch.ModeProbEst, arch.ModeToPick, arch.ModeToPickInOrder} {
		sim := arch.MustNew(arch.DefaultConfig(mode, *threshold))
		var total arch.Result
		for _, inst := range insts {
			total.Accumulate(sim.RunInstance(inst))
		}
		if mode == arch.ModeBaseline {
			baseCycles = total.Cycles
			baseEnergy = total.Energy.Total()
		}
		fmt.Fprintf(w, "%v\t%d\t%.2fx\t%d\t%d\t%d/%d\t%.2f\t%.3g\t%s\n",
			mode, total.Cycles, float64(baseCycles)/float64(total.Cycles),
			total.KBytes, total.VBytes, total.Kept, total.N,
			total.Utilization(sim.Config().Lanes), total.Energy.Total(), total.Energy.String())
	}
	w.Flush()
	fmt.Printf("\nenergy efficiency of ToPick vs baseline: see table (baseline %.3g pJ)\n", baseEnergy)
}

// synthInstance builds one synthetic attention instance.
func synthInstance(rng *rand.Rand, n, dim int, peaked bool) arch.Instance {
	qf := make([]float32, dim)
	for i := range qf {
		qf[i] = float32(rng.NormFloat64())
	}
	kf := make([][]float32, n)
	maxMag := 0.0
	for i := 0; i < n; i++ {
		row := make([]float32, dim)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		if peaked && i%23 == 0 {
			for j := range row {
				row[j] += qf[j] * 1.5
			}
		}
		kf[i] = row
		for _, v := range row {
			if m := math.Abs(float64(v)); m > maxMag {
				maxMag = m
			}
		}
	}
	kScale := fixed.ScaleFor(maxMag, 12)
	kRows := make([]fixed.Vector, n)
	for i := range kf {
		kRows[i] = fixed.QuantizeWithScale(kf[i], 12, kScale).Data
	}
	bias := make([]float32, n)
	for i := range bias {
		bias[i] = -0.02 * float32(n-1-i)
	}
	return arch.Instance{
		In: core.Inputs{
			Q:      fixed.Quantize(qf, 12),
			K:      kRows,
			KScale: kScale,
			Scale:  1 / math.Sqrt(float64(dim)),
			Bias:   bias,
		},
		Dim: dim,
	}
}
