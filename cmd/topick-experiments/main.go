// Command topick-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	topick-experiments -all            # every experiment (trains 8 stand-ins)
//	topick-experiments -fig 8          # one figure
//	topick-experiments -table 2        # one table
//	topick-experiments -quick -all     # reduced scale (2 models, short runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tokenpicker/internal/bench"
	"tokenpicker/internal/exec"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (2,3,4,8,9,10)")
		table     = flag.Int("table", 0, "table number to regenerate (1,2)")
		all       = flag.Bool("all", false, "regenerate everything")
		ablations = flag.Bool("ablations", false, "run the design-choice ablation suite")
		quick     = flag.Bool("quick", false, "reduced scale (subset of models, short training)")
		parallel  = flag.Int("parallel", 1, "head-executor width for perplexity decodes (0 = NumCPU; bit-identical results)")
	)
	flag.Parse()

	opts := bench.Full()
	if *quick || os.Getenv("TOPICK_QUICK") != "" {
		opts = bench.Quick()
	}
	opts.Parallel = exec.ResolveWidth(*parallel)
	if !*all && *fig == 0 && *table == 0 && !*ablations {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *all || *table == 1 {
		run("table 1", func() { bench.Table1().Fprint(os.Stdout) })
	}
	if *all || *table == 2 {
		run("table 2", func() { bench.Table2().Fprint(os.Stdout) })
	}
	if *all || *fig == 2 {
		run("fig 2", func() {
			t, _ := bench.Fig2()
			t.Fprint(os.Stdout)
		})
	}
	if *all || *fig == 3 {
		run("fig 3", func() {
			t, _ := bench.Fig3(opts)
			t.Fprint(os.Stdout)
		})
	}
	if *all || *fig == 4 {
		run("fig 4", func() {
			t, _ := bench.Fig4(opts)
			t.Fprint(os.Stdout)
		})
	}
	if *all || *fig == 8 {
		run("fig 8", func() {
			t, _ := bench.Fig8(opts)
			t.Fprint(os.Stdout)
		})
	}
	if *all || *fig == 9 {
		run("fig 9", func() {
			t, _ := bench.Fig9(opts, nil, 0.5)
			t.Fprint(os.Stdout)
		})
	}
	if *all || *fig == 10 {
		run("fig 10", func() {
			speed, en, _ := bench.Fig10(opts)
			speed.Fprint(os.Stdout)
			en.Fprint(os.Stdout)
		})
	}
	if *all || *ablations {
		run("ablations", func() {
			for _, t := range bench.Ablations(opts) {
				t.Fprint(os.Stdout)
			}
		})
	}
}
